/**
 * @file
 * Tests for the block manager: allocation, BVC/PVT bookkeeping, GC
 * victim selection, and wear-leveling candidates (§2 Fig. 3, §3.6).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "flash/flash_array.hh"
#include "ssd/block_manager.hh"
#include "util/rng.hh"

namespace leaftl
{
namespace
{

Geometry
smallGeom()
{
    Geometry g;
    g.num_channels = 2;
    g.blocks_per_channel = 4;
    g.pages_per_block = 4;
    return g;
}

struct Fixture
{
    Fixture() : flash(smallGeom()), bm(flash) {}

    /** Program a whole block with LPAs starting at base. */
    void
    fillBlock(uint32_t block, Lpa base)
    {
        const Ppa first = flash.geometry().firstPpa(block);
        for (uint32_t i = 0; i < flash.geometry().pages_per_block; i++) {
            flash.programPage(first + i, base + i);
            bm.markValid(first + i);
        }
    }

    FlashArray flash;
    BlockManager bm;
};

TEST(BlockManager, AllocationDrainsFreePool)
{
    Fixture f;
    EXPECT_EQ(f.bm.freeBlocks(), 8u);
    const uint32_t b = f.bm.allocateBlock();
    EXPECT_EQ(f.bm.freeBlocks(), 7u);
    EXPECT_LT(b, 8u);
    EXPECT_DOUBLE_EQ(f.bm.freeFraction(), 7.0 / 8.0);
}

TEST(BlockManager, ValidityCounters)
{
    Fixture f;
    const uint32_t b = f.bm.allocateBlock();
    f.fillBlock(b, 100);
    EXPECT_EQ(f.bm.validCount(b), 4u);
    const Ppa first = f.flash.geometry().firstPpa(b);
    EXPECT_TRUE(f.bm.isValid(first));
    f.bm.invalidate(first);
    EXPECT_FALSE(f.bm.isValid(first));
    EXPECT_EQ(f.bm.validCount(b), 3u);
}

TEST(BlockManagerDeath, DoubleInvalidateAborts)
{
    Fixture f;
    const uint32_t b = f.bm.allocateBlock();
    f.fillBlock(b, 0);
    const Ppa first = f.flash.geometry().firstPpa(b);
    f.bm.invalidate(first);
    EXPECT_DEATH(f.bm.invalidate(first), "non-valid");
}

TEST(BlockManager, GreedyVictimPicksFewestValid)
{
    Fixture f;
    const uint32_t b0 = f.bm.allocateBlock();
    const uint32_t b1 = f.bm.allocateBlock();
    f.fillBlock(b0, 0);
    f.fillBlock(b1, 100);
    // Invalidate 3 of 4 pages in b1, 1 of 4 in b0.
    const Ppa f1 = f.flash.geometry().firstPpa(b1);
    f.bm.invalidate(f1);
    f.bm.invalidate(f1 + 1);
    f.bm.invalidate(f1 + 2);
    f.bm.invalidate(f.flash.geometry().firstPpa(b0));

    auto victim = f.bm.pickGcVictim();
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, b1);
}

TEST(BlockManager, NoVictimOnPristineDevice)
{
    Fixture f;
    EXPECT_FALSE(f.bm.pickGcVictim().has_value());
    const uint32_t b = f.bm.allocateBlock();
    const Ppa first = f.flash.geometry().firstPpa(b);
    f.flash.programPage(first, 0);
    f.bm.markValid(first);
    // Open (partially programmed) blocks are valid GC candidates:
    // wear-leveling destinations would otherwise leak space forever.
    auto victim = f.bm.pickGcVictim();
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, b);
    // Exclusion list suppresses them.
    EXPECT_FALSE(f.bm.pickGcVictim({b}).has_value());
}

TEST(BlockManager, ValidPagesListsSurvivors)
{
    Fixture f;
    const uint32_t b = f.bm.allocateBlock();
    f.fillBlock(b, 200);
    const Ppa first = f.flash.geometry().firstPpa(b);
    f.bm.invalidate(first + 1);
    const auto pages = f.bm.validPages(b);
    ASSERT_EQ(pages.size(), 3u);
    EXPECT_EQ(pages[0].first, 200u);
    EXPECT_EQ(pages[0].second, first);
    EXPECT_EQ(pages[1].first, 202u);
    EXPECT_EQ(pages[2].first, 203u);
}

TEST(BlockManager, ReleaseRequiresEmptyAndErased)
{
    Fixture f;
    const uint32_t b = f.bm.allocateBlock();
    f.fillBlock(b, 0);
    const Ppa first = f.flash.geometry().firstPpa(b);
    for (uint32_t i = 0; i < 4; i++)
        f.bm.invalidate(first + i);
    f.flash.eraseBlock(b);
    f.bm.releaseBlock(b);
    EXPECT_EQ(f.bm.freeBlocks(), 8u);
}

TEST(BlockManagerDeath, ReleaseWithValidPagesAborts)
{
    Fixture f;
    const uint32_t b = f.bm.allocateBlock();
    f.fillBlock(b, 0);
    EXPECT_DEATH(f.bm.releaseBlock(b), "valid pages");
}

TEST(BlockManager, WearVictimRespectsThreshold)
{
    Fixture f;
    // No spread yet: no victim.
    EXPECT_FALSE(f.bm.pickWearVictim(2).has_value());

    // Age block 0 by erasing it several times, then fill block 1
    // (cold, never erased).
    const uint32_t hot = f.bm.allocateBlock();
    for (int i = 0; i < 5; i++)
        f.flash.eraseBlock(hot);
    const uint32_t cold = f.bm.allocateBlock();
    f.fillBlock(cold, 0);

    EXPECT_EQ(f.bm.eraseSpread(), 5u);
    auto victim = f.bm.pickWearVictim(2);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, cold);
    EXPECT_FALSE(f.bm.pickWearVictim(10).has_value());
}

TEST(BlockManagerSparsePvt, MaterializesOnFirstValidAndReleasesOnErase)
{
    Fixture f;
    EXPECT_EQ(f.bm.residentPvtBlocks(), 0u);
    const uint64_t empty_bytes = f.bm.pvtResidentBytes();

    const uint32_t block = f.bm.allocateBlock();
    EXPECT_EQ(f.bm.residentPvtBlocks(), 0u); // Allocation alone: none.
    f.fillBlock(block, 100);
    EXPECT_EQ(f.bm.residentPvtBlocks(), 1u);
    EXPECT_GT(f.bm.pvtResidentBytes(), empty_bytes);

    // Invalidating every page keeps the bitmap resident (the block is
    // still programmed); only the erase-and-release path frees it.
    const Ppa first = f.flash.geometry().firstPpa(block);
    for (uint32_t i = 0; i < f.flash.geometry().pages_per_block; i++)
        f.bm.invalidate(first + i);
    EXPECT_EQ(f.bm.residentPvtBlocks(), 1u);

    f.flash.eraseBlock(block);
    f.bm.releaseBlock(block);
    EXPECT_EQ(f.bm.residentPvtBlocks(), 0u);
    EXPECT_EQ(f.bm.pvtResidentBytes(), empty_bytes);

    // Unmaterialized blocks read as all-invalid.
    EXPECT_FALSE(f.bm.isValid(first));
    EXPECT_TRUE(f.bm.validPages(block).empty());
}

/**
 * Dense-reference equivalence fuzz: drive the sparse PVT through a
 * random program/invalidate/erase schedule and mirror every operation
 * in a plain dense bitmap-per-block model; both views must agree on
 * every page's validity and every block's valid count at every step.
 */
TEST(BlockManagerSparsePvt, MatchesDenseReferenceUnderFuzz)
{
    Fixture f;
    const Geometry &geom = f.flash.geometry();
    const uint32_t ppb = geom.pages_per_block;
    std::vector<std::vector<bool>> dense(geom.totalBlocks(),
                                         std::vector<bool>(ppb, false));

    Rng rng(0x5BA125E);
    std::vector<uint32_t> open_blocks;
    for (int step = 0; step < 2000; step++) {
        const int action = static_cast<int>(rng.nextBounded(10));
        if (action < 5 || open_blocks.empty()) {
            // Program-and-validate a fresh block (partially or fully).
            if (f.bm.freeBlocks() == 0)
                continue;
            const uint32_t b = f.bm.allocateBlock();
            const uint32_t pages =
                1 + static_cast<uint32_t>(rng.nextBounded(ppb));
            const Ppa first = geom.firstPpa(b);
            for (uint32_t i = 0; i < pages; i++) {
                f.flash.programPage(first + i, 7000 + i);
                f.bm.markValid(first + i);
                dense[b][i] = true;
            }
            open_blocks.push_back(b);
        } else if (action < 8) {
            // Invalidate a random valid page of a random live block.
            const uint32_t b = open_blocks[rng.nextBounded(
                open_blocks.size())];
            const uint32_t p = static_cast<uint32_t>(rng.nextBounded(ppb));
            if (dense[b][p]) {
                f.bm.invalidate(geom.firstPpa(b) + p);
                dense[b][p] = false;
            }
        } else {
            // Erase-and-release a fully invalidated block.
            const size_t idx = rng.nextBounded(open_blocks.size());
            const uint32_t b = open_blocks[idx];
            for (uint32_t p = 0; p < ppb; p++) {
                if (dense[b][p]) {
                    f.bm.invalidate(geom.firstPpa(b) + p);
                    dense[b][p] = false;
                }
            }
            f.flash.eraseBlock(b);
            f.bm.releaseBlock(b);
            open_blocks.erase(open_blocks.begin() +
                              static_cast<ptrdiff_t>(idx));
        }

        // Full-state comparison against the dense reference.
        size_t resident = 0;
        for (uint32_t b = 0; b < geom.totalBlocks(); b++) {
            uint32_t expect_count = 0;
            for (uint32_t p = 0; p < ppb; p++) {
                EXPECT_EQ(f.bm.isValid(geom.firstPpa(b) + p), dense[b][p])
                    << "step " << step << " block " << b << " page " << p;
                expect_count += dense[b][p] ? 1 : 0;
            }
            EXPECT_EQ(f.bm.validCount(b), expect_count);
            EXPECT_EQ(f.bm.validPages(b).size(), expect_count);
        }
        // Residency never exceeds the blocks programmed since erase.
        resident = f.bm.residentPvtBlocks();
        EXPECT_LE(resident, open_blocks.size());
    }
}

} // namespace
} // namespace leaftl
