/**
 * @file
 * Tests of the experiment lowering layer (config/experiment.hh):
 * every named key applies with the CLI's validation, unknown keys are
 * rejected with a nearest-key suggestion, and config files lower into
 * an ExperimentSpec through the same path (including the LEAFTL_FATAL
 * bench front door, death-tested).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "config/experiment.hh"

namespace leaftl
{
namespace config
{
namespace
{

/** A config file written to a unique temp path, removed on scope exit. */
class TempConfig
{
  public:
    explicit TempConfig(const std::string &text)
    {
        char name[] = "/tmp/leaftl_test_conf_XXXXXX";
        const int fd = mkstemp(name);
        EXPECT_GE(fd, 0);
        path_ = name;
        const ssize_t n = write(fd, text.data(), text.size());
        EXPECT_EQ(static_cast<size_t>(n), text.size());
        close(fd);
    }
    ~TempConfig() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** applyExperimentKey asserting success. */
void
apply(ExperimentSpec &spec, const std::string &key,
      const std::string &value)
{
    std::string err;
    EXPECT_TRUE(applyExperimentKey(spec, key, value, err))
        << key << "=" << value << ": " << err;
}

/** The error applyExperimentKey leaves for @a key = @a value. */
std::string
applyError(const std::string &key, const std::string &value)
{
    ExperimentSpec spec;
    std::string err;
    EXPECT_FALSE(applyExperimentKey(spec, key, value, err))
        << key << "=" << value << " unexpectedly parsed";
    return err;
}

TEST(ExperimentSpec, EveryKnownKeyApplies)
{
    ExperimentSpec spec;
    apply(spec, "ftl", "leaftl,dftl,sftl");
    apply(spec, "workload", "synthetic:zipf,msr:MSR-src2");
    apply(spec, "gamma", "0,4,16");
    apply(spec, "qd", "1,64");
    apply(spec, "device", "auto,tiny");
    apply(spec, "mode", "closed,poisson");
    apply(spec, "rate", "25000,1e5");
    apply(spec, "burst-duty", "0.5");
    apply(spec, "trace-strict", "true");
    apply(spec, "jobs", "4");
    apply(spec, "requests", "1234");
    apply(spec, "ws", "4096");
    apply(spec, "dram-mb", "2");
    apply(spec, "prefill", "0.5");
    apply(spec, "read-ratio", "0.75");
    apply(spec, "interarrival", "2.5");
    apply(spec, "seed", "7");

    EXPECT_EQ(spec.ftls.size(), 3u);
    EXPECT_EQ(spec.workloads,
              (std::vector<std::string>{"synthetic:zipf", "msr:MSR-src2"}));
    EXPECT_EQ(spec.gammas, (std::vector<uint32_t>{0, 4, 16}));
    EXPECT_EQ(spec.queue_depths, (std::vector<uint32_t>{1, 64}));
    EXPECT_EQ(spec.devices, (std::vector<std::string>{"auto", "tiny"}));
    EXPECT_EQ(spec.modes, (std::vector<std::string>{"closed", "poisson"}));
    EXPECT_EQ(spec.rates, (std::vector<double>{25000.0, 100000.0}));
    EXPECT_DOUBLE_EQ(spec.burst_duty, 0.5);
    EXPECT_TRUE(spec.trace_strict);
    EXPECT_EQ(spec.jobs, 4u);
    EXPECT_EQ(spec.requests, 1234u);
    EXPECT_EQ(spec.working_set_pages, 4096u);
    EXPECT_EQ(spec.dram_bytes, 2u << 20);
    EXPECT_DOUBLE_EQ(spec.prefill_frac, 0.5);
    EXPECT_DOUBLE_EQ(spec.read_ratio, 0.75);
    EXPECT_DOUBLE_EQ(spec.interarrival_us, 2.5);
    EXPECT_EQ(spec.seed, 7u);

    // dram-bytes takes the exact value (dram-mb shifts).
    apply(spec, "dram-bytes", "65536");
    EXPECT_EQ(spec.dram_bytes, 65536u);
}

TEST(ExperimentSpec, UnderscoreAndDashSpellingsAreEqual)
{
    ExperimentSpec spec;
    apply(spec, "read_ratio", "0.9");
    EXPECT_DOUBLE_EQ(spec.read_ratio, 0.9);
    apply(spec, "burst_duty", "0.75");
    EXPECT_DOUBLE_EQ(spec.burst_duty, 0.75);
}

TEST(ExperimentSpec, ValidationMatchesTheCliFlags)
{
    EXPECT_NE(applyError("ftl", "nftl").find(
                  "unknown FTL 'nftl' (expected leaftl, dftl, or sftl)"),
              std::string::npos);
    EXPECT_NE(applyError("qd", "0").find("queue depth"), std::string::npos);
    EXPECT_NE(applyError("device", "huge").find(
                  "unknown device 'huge' (expected auto or a preset"),
              std::string::npos);
    EXPECT_NE(applyError("mode", "turbo").find("unknown mode 'turbo'"),
              std::string::npos);
    EXPECT_NE(applyError("rate", "-5").find("bad rate"), std::string::npos);
    EXPECT_NE(applyError("burst-duty", "1.5").find("bad burst-duty"),
              std::string::npos);
    EXPECT_NE(applyError("prefill", "2").find("bad prefill"),
              std::string::npos);
    EXPECT_NE(applyError("requests", "0").find("bad requests"),
              std::string::npos);
    EXPECT_NE(applyError("gamma", "-1").find("bad gamma"),
              std::string::npos);
}

TEST(ExperimentSpec, UnknownKeySuggestsTheNearest)
{
    EXPECT_EQ(nearestExperimentKey("gama"), "gamma");
    EXPECT_EQ(nearestExperimentKey("requets"), "requests");
    EXPECT_EQ(nearestExperimentKey("red-ratio"), "read-ratio");

    const std::string err = applyError("gama", "4");
    EXPECT_NE(err.find("unknown key 'gama'"), std::string::npos) << err;
    EXPECT_NE(err.find("did you mean 'gamma'?"), std::string::npos) << err;
}

TEST(ExperimentSpec, LoadExperimentFileLowersThroughPresets)
{
    const TempConfig conf("base_ws = 4096\n"
                          "[slow-device]\n"
                          "device = tiny\n"
                          "ws     = $(base_ws)\n"
                          "[experiment]\n"
                          "inherit = slow-device\n"
                          "ftl     = leaftl,dftl\n"
                          "gamma   = 0,4\n");
    ExperimentSpec spec;
    std::string err;
    ASSERT_TRUE(loadExperimentFile(conf.path(), spec, err)) << err;
    EXPECT_EQ(spec.devices, (std::vector<std::string>{"tiny"}));
    EXPECT_EQ(spec.working_set_pages, 4096u);
    EXPECT_EQ(spec.ftls.size(), 2u);
    EXPECT_EQ(spec.gammas, (std::vector<uint32_t>{0, 4}));
}

TEST(ExperimentSpec, LoadExperimentFileRequiresTheSection)
{
    const TempConfig conf("[device]\ndevice = tiny\n");
    ExperimentSpec spec;
    std::string err;
    EXPECT_FALSE(loadExperimentFile(conf.path(), spec, err));
    EXPECT_NE(err.find("no [experiment] section"), std::string::npos)
        << err;
}

TEST(ExperimentSpec, UnknownConfigKeyNamesSectionAndSuggestion)
{
    const TempConfig conf("[experiment]\ngama = 4\n");
    ExperimentSpec spec;
    std::string err;
    EXPECT_FALSE(loadExperimentFile(conf.path(), spec, err));
    EXPECT_NE(err.find("[experiment]:"), std::string::npos) << err;
    EXPECT_NE(err.find("unknown key 'gama' (did you mean 'gamma'?)"),
              std::string::npos)
        << err;
}

TEST(ExperimentSpecDeathTest, OrDieRejectsUnknownKeysFatally)
{
    const TempConfig conf("[experiment]\nqdepth = 8\n");
    EXPECT_DEATH(loadExperimentFileOrDie(conf.path()),
                 "unknown key 'qdepth' \\(did you mean 'qd'\\?\\)");
}

TEST(ExperimentSpecDeathTest, OrDieRejectsMissingFileFatally)
{
    EXPECT_DEATH(loadExperimentFileOrDie("/nonexistent/x.conf"),
                 "cannot open config file");
}

TEST(CampaignSpec, NameDefaultsToFileStemAndDirToCampaigns)
{
    const TempConfig conf("[experiment]\nrequests = 10\n");
    CampaignSpec camp;
    std::string err;
    ASSERT_TRUE(loadCampaignFile(conf.path(), camp, err)) << err;
    // Stem of /tmp/leaftl_test_conf_XXXXXX (mkstemp names have no
    // extension, so the stem is the basename).
    const std::string base = conf.path().substr(5); // Drop "/tmp/".
    EXPECT_EQ(camp.name, base);
    EXPECT_EQ(camp.dir, "campaigns/" + base);
    EXPECT_EQ(camp.exp.requests, 10u);
}

TEST(CampaignSpec, CampaignSectionOverridesNameAndDir)
{
    const TempConfig conf("[experiment]\n"
                          "requests = 10\n"
                          "[campaign]\n"
                          "name = nightly\n"
                          "dir  = /tmp/nightly-out\n");
    CampaignSpec camp;
    std::string err;
    ASSERT_TRUE(loadCampaignFile(conf.path(), camp, err)) << err;
    EXPECT_EQ(camp.name, "nightly");
    EXPECT_EQ(camp.dir, "/tmp/nightly-out");
}

TEST(CampaignSpec, UnknownCampaignKeyIsRejected)
{
    const TempConfig conf("[experiment]\n"
                          "requests = 10\n"
                          "[campaign]\n"
                          "output = somewhere\n");
    CampaignSpec camp;
    std::string err;
    EXPECT_FALSE(loadCampaignFile(conf.path(), camp, err));
    EXPECT_NE(err.find("unknown key 'output' (expected name or dir)"),
              std::string::npos)
        << err;
}

} // namespace
} // namespace config
} // namespace leaftl
