/**
 * @file
 * Crash-consistency tests (§3.8): persist the mapping table, crash,
 * recover from the snapshot plus an OOB scan of since-allocated
 * blocks, and verify every mapping survives.
 */

#include <gtest/gtest.h>

#include <set>

#include "ssd/ssd.hh"
#include "util/rng.hh"

namespace leaftl
{
namespace
{

SsdConfig
smallConfig(uint32_t gamma = 0)
{
    SsdConfig cfg;
    cfg.geometry.num_channels = 4;
    cfg.geometry.blocks_per_channel = 32;
    cfg.geometry.pages_per_block = 32;
    cfg.ftl = FtlKind::LeaFTL;
    cfg.gamma = gamma;
    cfg.dram_bytes = 2ull << 20;
    cfg.write_buffer_bytes = 32ull * 4096;
    return cfg;
}

void
verifyAll(Ssd &ssd, const std::set<Lpa> &written)
{
    Tick now = 0;
    for (Lpa lpa : written) {
        const auto oracle = ssd.oraclePpa(lpa);
        ASSERT_TRUE(oracle.has_value()) << "recovery lost LPA " << lpa;
        EXPECT_EQ(ssd.flash().peekLpa(*oracle), lpa);
        now += ssd.read(lpa, now); // Internal asserts check content.
    }
}

TEST(Recovery, SnapshotOnlyRecovery)
{
    Ssd ssd(smallConfig());
    std::set<Lpa> written;
    Tick now = 0;
    for (Lpa l = 0; l < 300; l++) {
        written.insert(l);
        now += ssd.write(l, now);
    }
    ssd.drainBuffer(now);
    ssd.persistMapping(now);
    EXPECT_GT(ssd.stats().trans_writes, 0u);

    const auto rec = ssd.crashAndRecover(now);
    EXPECT_EQ(rec.scanned_blocks, 0u); // Nothing allocated since.
    verifyAll(ssd, written);
}

TEST(Recovery, OobScanRelearnsRecentBlocks)
{
    Ssd ssd(smallConfig());
    std::set<Lpa> written;
    Tick now = 0;
    for (Lpa l = 0; l < 200; l++) {
        written.insert(l);
        now += ssd.write(l, now);
    }
    ssd.drainBuffer(now);
    ssd.persistMapping(now);

    // More writes after the snapshot, including overwrites.
    for (Lpa l = 150; l < 400; l++) {
        written.insert(l);
        now += ssd.write(l, now);
    }
    ssd.drainBuffer(now);

    const auto rec = ssd.crashAndRecover(now);
    EXPECT_GT(rec.scanned_blocks, 0u);
    EXPECT_GT(rec.relearned_mappings, 0u);
    EXPECT_GT(rec.recovery_time, 0u);
    verifyAll(ssd, written);
}

TEST(Recovery, UnsnapshottedDeviceRecoversFromScanAlone)
{
    Ssd ssd(smallConfig());
    std::set<Lpa> written;
    Tick now = 0;
    for (Lpa l = 0; l < 250; l++) {
        written.insert(l);
        now += ssd.write(l, now);
    }
    ssd.drainBuffer(now);

    const auto rec = ssd.crashAndRecover(now);
    EXPECT_GT(rec.scanned_blocks, 0u);
    verifyAll(ssd, written);
}

TEST(Recovery, SurvivesGcBetweenSnapshotAndCrash)
{
    Ssd ssd(smallConfig());
    const uint64_t ws = ssd.config().hostPages() / 2;
    Rng rng(3);
    std::set<Lpa> written;
    Tick now = 0;
    for (int i = 0; i < static_cast<int>(ws) * 2; i++) {
        const Lpa lpa = static_cast<Lpa>(rng.nextBounded(ws));
        written.insert(lpa);
        now += ssd.write(lpa, now);
    }
    ssd.drainBuffer(now);
    ssd.persistMapping(now);

    for (int i = 0; i < static_cast<int>(ws) * 3; i++) {
        const Lpa lpa = static_cast<Lpa>(rng.nextBounded(ws));
        written.insert(lpa);
        now += ssd.write(lpa, now);
    }
    ssd.drainBuffer(now);
    EXPECT_GT(ssd.stats().gc_runs, 0u);

    ssd.crashAndRecover(now);
    verifyAll(ssd, written);
}

TEST(Recovery, ApproximateSegmentsSurviveRecovery)
{
    Ssd ssd(smallConfig(/*gamma=*/4));
    Rng rng(17);
    std::set<Lpa> written;
    Tick now = 0;
    Lpa lpa = 0;
    for (int i = 0; i < 600; i++) {
        lpa = (lpa + 1 + rng.nextBounded(5)) % 2000;
        written.insert(lpa);
        now += ssd.write(lpa, now);
    }
    ssd.drainBuffer(now);
    ssd.persistMapping(now);
    ssd.crashAndRecover(now);
    verifyAll(ssd, written);
}

TEST(Recovery, DoubleCrashStaysConsistent)
{
    Ssd ssd(smallConfig());
    std::set<Lpa> written;
    Tick now = 0;
    for (Lpa l = 0; l < 150; l++) {
        written.insert(l);
        now += ssd.write(l, now);
    }
    ssd.drainBuffer(now);
    ssd.persistMapping(now);
    ssd.crashAndRecover(now);
    // More writes, crash again WITHOUT a fresh snapshot: recovery
    // must replay from the old snapshot plus both scan windows.
    for (Lpa l = 100; l < 250; l++) {
        written.insert(l);
        now += ssd.write(l, now);
    }
    ssd.drainBuffer(now);
    ssd.crashAndRecover(now);
    verifyAll(ssd, written);
}

TEST(Recovery, PersistAfterRecoveryShrinksNextScan)
{
    Ssd ssd(smallConfig());
    Tick now = 0;
    for (Lpa l = 0; l < 200; l++)
        now += ssd.write(l, now);
    ssd.drainBuffer(now);
    ssd.crashAndRecover(now); // Full scan (never persisted).
    ssd.persistMapping(now);
    const auto rec = ssd.crashAndRecover(now); // Fresh snapshot.
    EXPECT_EQ(rec.scanned_blocks, 0u);
    ASSERT_TRUE(ssd.oraclePpa(100).has_value());
}

TEST(Recovery, JournalReplayBoundsTheScan)
{
    // The journaled pipeline's recovery contract: replay covers every
    // journaled flush, so the OOB scan touches only the unjournaled
    // tail — never O(device fullness).
    SsdConfig cfg = smallConfig();
    cfg.journal_threshold_bytes = 4096;
    Ssd ssd(cfg);
    std::set<Lpa> written;
    Tick now = 0;
    for (Lpa l = 0; l < 400; l++) {
        written.insert(l);
        now += ssd.write(l, now);
    }
    ssd.drainBuffer(now);

    const auto rec = ssd.crashAndRecover(now);
    EXPECT_GT(rec.replayed_journal_records, 0u);
    EXPECT_LE(rec.scanned_blocks, ssd.recoveryScanBoundBlocks());
    verifyAll(ssd, written);
}

TEST(Recovery, ScanBoundIndependentOfDeviceFullness)
{
    // The SLO: the same scan bound holds on a quarter-full and a
    // three-quarters-full device — recovery work tracks the journal
    // threshold, not capacity.
    uint64_t scanned[2] = {0, 0};
    const double fills[2] = {0.25, 0.75};
    for (int i = 0; i < 2; i++) {
        // A device large enough that the scan bound is far below the
        // block count — otherwise the SLO would hold vacuously.
        SsdConfig cfg = smallConfig();
        cfg.geometry.num_channels = 8;
        cfg.geometry.blocks_per_channel = 64;
        cfg.journal_threshold_bytes = 4096;
        Ssd ssd(cfg);
        ASSERT_LT(ssd.recoveryScanBoundBlocks(),
                  cfg.geometry.totalBlocks() / 2);
        const auto fill =
            static_cast<Lpa>(static_cast<double>(ssd.config().hostPages()) *
                             fills[i]);
        std::set<Lpa> written;
        Tick now = 0;
        for (Lpa l = 0; l < fill; l++) {
            written.insert(l);
            now += ssd.write(l, now);
        }
        ssd.drainBuffer(now);
        const auto rec = ssd.crashAndRecover(now);
        scanned[i] = rec.scanned_blocks;
        EXPECT_LE(rec.scanned_blocks, ssd.recoveryScanBoundBlocks());
        verifyAll(ssd, written);
    }
    // Three times the data must not mean three times the scan.
    EXPECT_LE(scanned[1], scanned[0] + 8);
}

TEST(Recovery, DeltaChainRecoversAcrossSnapshots)
{
    // Incremental persistence: the second snapshot emits a delta
    // chained to the first, and recovery replays base + delta.
    SsdConfig cfg = smallConfig();
    cfg.journal_threshold_bytes = 1ull << 20; // Persist only on demand.
    Ssd ssd(cfg);
    std::set<Lpa> written;
    Tick now = 0;
    for (Lpa l = 0; l < 300; l++) {
        written.insert(l);
        now += ssd.write(l, now);
    }
    ssd.drainBuffer(now);
    ssd.persistMapping(now); // Full base snapshot.
    for (Lpa l = 300; l < 380; l++) {
        written.insert(l);
        now += ssd.write(l, now);
    }
    ssd.drainBuffer(now);
    ssd.persistMapping(now); // Dirty groups only.
    EXPECT_GE(ssd.deltaChainLength(), 1u);

    const auto rec = ssd.crashAndRecover(now);
    EXPECT_GT(rec.applied_deltas, 0u);
    EXPECT_EQ(rec.replayed_journal_records, 0u); // Persist clears it.
    EXPECT_EQ(rec.scanned_blocks, 0u);
    verifyAll(ssd, written);
}

TEST(Recovery, BaselineFtlsNoOp)
{
    SsdConfig cfg = smallConfig();
    cfg.ftl = FtlKind::DFTL;
    Ssd ssd(cfg);
    Tick now = 0;
    for (Lpa l = 0; l < 100; l++)
        now += ssd.write(l, now);
    ssd.drainBuffer(now);
    ssd.persistMapping(now);
    const auto rec = ssd.crashAndRecover(now);
    EXPECT_EQ(rec.scanned_blocks, 0u);
    // DFTL's translation pages persist by construction: still readable.
    now += ssd.read(50, now);
}

} // namespace
} // namespace leaftl
