/**
 * @file
 * Tests for the per-group log-structured mapping table (§3.4, §3.7,
 * Algorithms 1 & 2), including the paper's Fig. 13 timeline and a
 * randomized differential test against a shadow map.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "learned/group.hh"
#include "learned/plr.hh"
#include "util/rng.hh"

namespace leaftl
{
namespace
{

/** Learn a run of (off, consecutive PPAs from p0) into the group. */
void
learnRun(Group &group, const std::vector<uint8_t> &offs, Ppa p0,
         uint32_t gamma, std::map<uint8_t, Ppa> *truth = nullptr)
{
    std::vector<PlrPoint> pts;
    Ppa ppa = p0;
    for (uint8_t off : offs) {
        pts.push_back({off, ppa});
        if (truth)
            (*truth)[off] = ppa;
        ppa++;
    }
    for (const auto &fs : fitGroupSegments(pts, gamma))
        group.update(fs);
}

std::vector<uint8_t>
range(uint32_t first, uint32_t last, uint32_t step = 1)
{
    std::vector<uint8_t> offs;
    for (uint32_t o = first; o <= last; o += step)
        offs.push_back(static_cast<uint8_t>(o));
    return offs;
}

void
verifyAgainstTruth(const Group &group, const std::map<uint8_t, Ppa> &truth,
                   uint32_t gamma)
{
    for (uint32_t off = 0; off < kGroupSpan; off++) {
        const auto res = group.lookup(static_cast<uint8_t>(off));
        auto it = truth.find(static_cast<uint8_t>(off));
        if (it == truth.end()) {
            EXPECT_FALSE(res.has_value())
                << "phantom mapping for off " << off;
            continue;
        }
        ASSERT_TRUE(res.has_value()) << "lost mapping for off " << off;
        const int64_t err = static_cast<int64_t>(res->ppa) -
                            static_cast<int64_t>(it->second);
        const int64_t bound = res->approximate ? gamma : 0;
        EXPECT_LE(std::llabs(err), bound) << "off " << off;
    }
}

TEST(Group, EmptyLookupFindsNothing)
{
    Group g;
    EXPECT_FALSE(g.lookup(0).has_value());
    EXPECT_EQ(g.numLevels(), 0u);
    EXPECT_EQ(g.memoryBytes(), 0u);
}

TEST(Group, SingleSegmentLookup)
{
    Group g;
    std::map<uint8_t, Ppa> truth;
    learnRun(g, range(0, 63), 1000, 0, &truth);
    EXPECT_EQ(g.numLevels(), 1u);
    EXPECT_EQ(g.numSegments(), 1u);
    verifyAgainstTruth(g, truth, 0);
}

TEST(Group, PaperFigure13Timeline)
{
    // The worked example of §3.7 (gamma chosen so [75,82] and [72,80]
    // are approximate).
    Group g;
    const uint32_t gamma = 8;

    // T0: initial segment [0, 63].
    learnRun(g, range(0, 63), 0, 0);
    EXPECT_EQ(g.numLevels(), 1u);

    // T1: update LPAs 200-255: no overlap, stays at level 0.
    learnRun(g, range(200, 255), 1000, 0);
    EXPECT_EQ(g.numLevels(), 1u);
    EXPECT_EQ(g.numSegments(), 2u);

    // T2: update LPAs 16-31: overlaps [0,63], victim drops one level.
    learnRun(g, range(16, 31), 2000, 0);
    EXPECT_EQ(g.numLevels(), 2u);
    EXPECT_EQ(g.numSegments(), 3u);

    // T3: approximate segment {75, 78, 82}.
    learnRun(g, {75, 78, 82}, 3000, gamma);
    // T4: approximate segment {72, 73, 80}: ranges interleave, the
    // older approximate segment moves down.
    learnRun(g, {72, 73, 80}, 4000, gamma);
    EXPECT_GE(g.numLevels(), 2u);

    // T5: lookup LPA 50 resolves through the lower level (old [0,63]).
    auto r50 = g.lookup(50);
    ASSERT_TRUE(r50.has_value());
    EXPECT_EQ(r50->ppa, 0u + 50);
    EXPECT_GE(r50->levels_visited, 2u);

    // T6: lookup LPA 78: inside [72,80]'s range but owned by the
    // {75,78,82} segment; the CRB must resolve it.
    auto r78 = g.lookup(78);
    ASSERT_TRUE(r78.has_value());
    EXPECT_TRUE(r78->approximate);
    const int64_t err78 =
        static_cast<int64_t>(r78->ppa) - static_cast<int64_t>(3001);
    EXPECT_LE(std::llabs(err78), static_cast<int64_t>(gamma));

    // T7: update LPAs 32-90: fully covers {72,73,80}, which dies.
    learnRun(g, range(32, 90), 5000, 0);
    auto r80 = g.lookup(80);
    ASSERT_TRUE(r80.has_value());
    EXPECT_EQ(r80->ppa, 5000u + (80 - 32));

    // T8: compaction reclaims dead segments and empty levels.
    const size_t before = g.memoryBytes();
    g.compact();
    EXPECT_LE(g.memoryBytes(), before);
    g.checkInvariants();

    // Post-compaction lookups are unchanged: LPA 50 was overwritten
    // at T7, LPA 5 still resolves through the original segment, LPA
    // 20 through the T2 segment.
    auto r50b = g.lookup(50);
    ASSERT_TRUE(r50b.has_value());
    EXPECT_EQ(r50b->ppa, 5000u + (50 - 32));
    auto r5 = g.lookup(5);
    ASSERT_TRUE(r5.has_value());
    EXPECT_EQ(r5->ppa, 0u + 5);
    auto r20 = g.lookup(20);
    ASSERT_TRUE(r20.has_value());
    EXPECT_EQ(r20->ppa, 2000u + (20 - 16));
}

TEST(Group, FullOverwriteRemovesVictim)
{
    Group g;
    learnRun(g, range(10, 20), 100, 0);
    EXPECT_EQ(g.numSegments(), 1u);
    learnRun(g, range(10, 20), 200, 0);
    // The old segment is fully superseded: removed at insert.
    EXPECT_EQ(g.numSegments(), 1u);
    EXPECT_EQ(g.numLevels(), 1u);
    auto r = g.lookup(15);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->ppa, 205u);
}

TEST(Group, PartialOverlapTrimsVictimEdges)
{
    Group g;
    learnRun(g, range(0, 100), 100, 0);
    learnRun(g, range(0, 50), 300, 0);
    // Victim's surviving range is [51, 100]; trimmed, stays sorted.
    EXPECT_EQ(g.numLevels(), 1u);
    auto r = g.lookup(75);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->ppa, 100u + 75);
    auto r2 = g.lookup(25);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->ppa, 300u + 25);
    g.checkInvariants();
}

TEST(Group, InteriorOverlapPopsVictimDown)
{
    Group g;
    learnRun(g, range(0, 100), 100, 0);
    learnRun(g, range(40, 60), 300, 0); // Interior: victim interleaves.
    EXPECT_EQ(g.numLevels(), 2u);
    EXPECT_EQ(g.lookup(50)->ppa, 300u + 10);
    EXPECT_EQ(g.lookup(10)->ppa, 100u + 10);
    EXPECT_EQ(g.lookup(90)->ppa, 100u + 90);
    g.checkInvariants();
}

TEST(Group, StrideVictimSurvivesInterleavedSinglePoints)
{
    Group g;
    // Stride-2 accurate segment over evens.
    learnRun(g, range(0, 40, 2), 100, 0);
    // Overwrite odd offsets: ranges interleave, members disjoint.
    learnRun(g, range(1, 39, 2), 300, 0);
    for (uint32_t off = 0; off <= 40; off += 2)
        EXPECT_EQ(g.lookup(static_cast<uint8_t>(off))->ppa,
                  100u + off / 2);
    for (uint32_t off = 1; off <= 39; off += 2)
        EXPECT_EQ(g.lookup(static_cast<uint8_t>(off))->ppa,
                  300u + (off - 1) / 2);
    // Compaction cannot merge member-disjoint interleaved segments,
    // but must not corrupt them either.
    g.compact();
    g.checkInvariants();
    for (uint32_t off = 0; off <= 40; off += 2)
        EXPECT_EQ(g.lookup(static_cast<uint8_t>(off))->ppa,
                  100u + off / 2);
}

TEST(Group, CompactionMergesShadowedLevels)
{
    Group g;
    std::map<uint8_t, Ppa> truth;
    // Layered full overwrites of the same range: compaction should
    // collapse everything to one level.
    for (int layer = 0; layer < 6; layer++)
        learnRun(g, range(0, 63), 1000 * (layer + 1), 0, &truth);
    learnRun(g, range(10, 30), 50000, 0, &truth);
    g.compact();
    EXPECT_LE(g.numLevels(), 2u);
    verifyAgainstTruth(g, truth, 0);
    g.checkInvariants();
}

TEST(Group, MemoryAccountingTracksSegmentsAndCrb)
{
    Group g;
    learnRun(g, range(0, 63), 0, 0);
    EXPECT_EQ(g.memoryBytes(), 8u);
    learnRun(g, {70, 72, 75, 76}, 100, 8); // Approximate + CRB run.
    EXPECT_EQ(g.numApproximate(), 1u);
    EXPECT_EQ(g.memoryBytes(), 16u + 4 + 1);
}

TEST(Group, LevelsVisitedCountsSearchDepth)
{
    Group g;
    learnRun(g, range(0, 100), 100, 0);
    learnRun(g, range(40, 60), 300, 0);
    EXPECT_EQ(g.lookup(50)->levels_visited, 1u);
    EXPECT_EQ(g.lookup(10)->levels_visited, 2u);
}

class GroupRandomSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>>
{
};

TEST_P(GroupRandomSweep, DifferentialAgainstShadowMap)
{
    const uint32_t gamma = std::get<0>(GetParam());
    Rng rng(std::get<1>(GetParam()));
    Group g;
    std::map<uint8_t, Ppa> truth;
    Ppa next_ppa = 10000;

    for (int round = 0; round < 60; round++) {
        // Generate a random sorted batch (mix of runs and points).
        std::vector<uint8_t> offs;
        uint32_t off = rng.nextBounded(32);
        while (off < kGroupSpan && offs.size() < 64) {
            offs.push_back(static_cast<uint8_t>(off));
            off += 1 + rng.nextBounded(7);
        }
        if (offs.empty())
            continue;
        learnRun(g, offs, next_ppa, gamma, &truth);
        next_ppa += static_cast<Ppa>(offs.size()) + rng.nextBounded(100);

        if (round % 17 == 16) {
            g.compact();
        }
        g.checkInvariants();
    }
    verifyAgainstTruth(g, truth, gamma);
    g.compact();
    g.checkInvariants();
    verifyAgainstTruth(g, truth, gamma);
}

INSTANTIATE_TEST_SUITE_P(
    GammaSeeds, GroupRandomSweep,
    ::testing::Combine(::testing::Values(0u, 1u, 4u, 16u),
                       ::testing::Range<uint64_t>(0, 15)));

} // namespace
} // namespace leaftl
