/**
 * @file
 * Unit tests for the 8-byte learned segment encoding (§3.2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "learned/segment.hh"
#include "util/float16.hh"

namespace leaftl
{
namespace
{

/** Build an accurate segment for LPAs {s, s+d, ..., s+(n-1)d} -> p0... */
Segment
makeAccurate(uint8_t s, uint32_t d, uint32_t n, Ppa p0)
{
    const float k = 1.0f / static_cast<float>(d);
    uint16_t kbits = float16SetTag(float16Encode(k), false);
    // Intercept anchors prediction at the group offset: p0 - k*s,
    // centered so rounding hits exactly.
    const double kq = float16Decode(kbits);
    const int32_t intercept =
        static_cast<int32_t>(std::llround(p0 - kq * s));
    return Segment(s, static_cast<uint8_t>((n - 1) * d), kbits, intercept);
}

TEST(Segment, EncodedSizeIsEightBytes)
{
    EXPECT_EQ(Segment::kEncodedBytes, 8u);
    EXPECT_LE(sizeof(Segment), 8u);
}

TEST(Segment, SinglePointPredictsItself)
{
    const Segment s = Segment::makeSinglePoint(42, 1234);
    EXPECT_TRUE(s.singlePoint());
    EXPECT_FALSE(s.approximate());
    EXPECT_EQ(s.slpa(), 42u);
    EXPECT_EQ(s.endOff(), 42u);
    EXPECT_EQ(s.predict(42), 1234u);
    EXPECT_TRUE(s.hasLpaAccurate(42));
    EXPECT_FALSE(s.hasLpaAccurate(43));
}

TEST(Segment, PaperFigure6AccurateExample)
{
    // Fig. 6: LPAs [0,1,2,3] -> PPAs [32,33,34,35]: S=0, L=3, K=1, I=32.
    const Segment s = makeAccurate(0, 1, 4, 32);
    EXPECT_EQ(s.length(), 3u);
    for (uint8_t off = 0; off <= 3; off++) {
        EXPECT_TRUE(s.hasLpaAccurate(off));
        EXPECT_EQ(s.predict(off), 32u + off);
    }
}

TEST(Segment, StrideMembership)
{
    // LPAs {10, 14, 18, 22} (stride 4) -> PPAs {100..103}.
    const Segment s = makeAccurate(10, 4, 4, 100);
    EXPECT_EQ(s.stride(), 4u);
    EXPECT_TRUE(s.hasLpaAccurate(10));
    EXPECT_TRUE(s.hasLpaAccurate(14));
    EXPECT_TRUE(s.hasLpaAccurate(22));
    EXPECT_FALSE(s.hasLpaAccurate(12));
    EXPECT_FALSE(s.hasLpaAccurate(9));
    EXPECT_FALSE(s.hasLpaAccurate(23));
    EXPECT_FALSE(s.hasLpaAccurate(26)); // On-stride but past the end.
}

TEST(Segment, TrimPreservesPredictions)
{
    const Segment orig = makeAccurate(0, 2, 10, 500); // offs 0,2,..,18
    Segment s = orig;
    s.trim(4, 14);
    EXPECT_EQ(s.slpa(), 4u);
    EXPECT_EQ(s.endOff(), 14u);
    // K and I untouched: predictions of surviving offsets unchanged.
    for (uint8_t off = 4; off <= 14; off += 2)
        EXPECT_EQ(s.predict(off), orig.predict(off));
    EXPECT_FALSE(s.hasLpaAccurate(2));
    EXPECT_TRUE(s.hasLpaAccurate(6));
}

TEST(Segment, OverlapsDetection)
{
    const Segment a = makeAccurate(10, 1, 11, 0); // [10, 20]
    const Segment b = makeAccurate(20, 1, 5, 0);  // [20, 24]
    const Segment c = makeAccurate(30, 1, 3, 0);  // [30, 32]
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_TRUE(b.overlaps(a));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_FALSE(c.overlaps(a));
}

TEST(Segment, ApproximateTagRoundTrips)
{
    uint16_t kbits = float16SetTag(float16Encode(0.56f), true);
    const Segment s(0, 5, kbits, 64);
    EXPECT_TRUE(s.approximate());
    EXPECT_FALSE(s.singlePoint());
}

TEST(Segment, PaperFigure6ApproximateExample)
{
    // Fig. 6: LPAs [0,1,4,5] -> PPAs [64,65,66,67], K=0.56, I=64.
    // Prediction for LPA 4 is ~66-67 (the paper shows 67, true 66):
    // within gamma=1 either way.
    uint16_t kbits = float16SetTag(float16Encode(0.56f), true);
    const Segment s(0, 5, kbits, 64);
    const int64_t pred = s.predict(4);
    EXPECT_NEAR(static_cast<double>(pred), 66.0, 1.0);
}

class SegmentStrideSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SegmentStrideSweep, AccurateAcrossStridesAndBases)
{
    // Property: for every stride d and base PPA, the encoded accurate
    // segment predicts every member exactly and rejects non-members.
    const int d = std::get<0>(GetParam());
    const Ppa p0 = static_cast<Ppa>(std::get<1>(GetParam()));
    const uint32_t n = 255 / d + 1;
    const Segment s = makeAccurate(0, d, n, p0);
    for (uint32_t j = 0; j < n; j++) {
        const uint8_t off = static_cast<uint8_t>(j * d);
        ASSERT_TRUE(s.hasLpaAccurate(off)) << "d=" << d << " j=" << j;
        ASSERT_EQ(s.predict(off), p0 + j) << "d=" << d << " j=" << j;
    }
    if (d > 1) {
        EXPECT_FALSE(s.hasLpaAccurate(1));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Strides, SegmentStrideSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 51, 255),
                       ::testing::Values(0, 1000, 123456789)));

} // namespace
} // namespace leaftl
