/**
 * @file
 * Tests for the NAND flash array model: program/read/erase semantics,
 * NAND ordering rules, the OOB reverse-mapping window (§3.5), and the
 * sparse block-granular page store (residency O(live blocks), behavior
 * identical to the dense per-page store it replaced).
 */

#include <gtest/gtest.h>

#include <vector>

#include "flash/flash_array.hh"
#include "util/rng.hh"

namespace leaftl
{
namespace
{

Geometry
smallGeom()
{
    Geometry g;
    g.num_channels = 2;
    g.blocks_per_channel = 4;
    g.pages_per_block = 8;
    g.page_size = 4096;
    g.oob_size = 128;
    return g;
}

TEST(Geometry, DerivedQuantities)
{
    const Geometry g = smallGeom();
    EXPECT_EQ(g.totalBlocks(), 8u);
    EXPECT_EQ(g.totalPages(), 64u);
    EXPECT_EQ(g.capacityBytes(), 64u * 4096);
    EXPECT_EQ(g.blockOf(17), 2u);
    EXPECT_EQ(g.pageInBlock(17), 1u);
    EXPECT_EQ(g.channelOfBlock(3), 1u);
    EXPECT_EQ(g.firstPpa(2), 16u);
    EXPECT_EQ(g.oobEntries(), 32u);
}

TEST(FlashArray, ProgramAndReadBack)
{
    FlashArray flash(smallGeom());
    flash.programPage(0, 111);
    flash.programPage(1, 222);
    EXPECT_EQ(flash.readPage(0), 111u);
    EXPECT_EQ(flash.readPage(1), 222u);
    EXPECT_EQ(flash.readPage(2), kInvalidLpa);
    EXPECT_EQ(flash.counters().page_writes, 2u);
    EXPECT_EQ(flash.counters().page_reads, 3u);
}

TEST(FlashArray, PeekDoesNotCount)
{
    FlashArray flash(smallGeom());
    flash.programPage(0, 5);
    EXPECT_EQ(flash.peekLpa(0), 5u);
    EXPECT_EQ(flash.counters().page_reads, 0u);
}

TEST(FlashArray, BlockLifecycle)
{
    FlashArray flash(smallGeom());
    EXPECT_EQ(flash.blockState(0), BlockState::Free);
    flash.programPage(0, 1);
    EXPECT_EQ(flash.blockState(0), BlockState::Open);
    for (Ppa p = 1; p < 8; p++)
        flash.programPage(p, p);
    EXPECT_EQ(flash.blockState(0), BlockState::Full);
    flash.eraseBlock(0);
    EXPECT_EQ(flash.blockState(0), BlockState::Free);
    EXPECT_EQ(flash.eraseCount(0), 1u);
    EXPECT_EQ(flash.peekLpa(0), kInvalidLpa);
    // Erased block can be programmed again from page 0.
    flash.programPage(0, 99);
    EXPECT_EQ(flash.peekLpa(0), 99u);
}

TEST(FlashArrayDeath, OutOfOrderProgramAborts)
{
    FlashArray flash(smallGeom());
    EXPECT_DEATH(flash.programPage(3, 1), "out-of-order");
    flash.programPage(0, 1);
    EXPECT_DEATH(flash.programPage(0, 2), "out-of-order");
}

TEST(FlashArray, OobWindowCoversNeighbors)
{
    FlashArray flash(smallGeom());
    for (Ppa p = 0; p < 8; p++)
        flash.programPage(p, 100 + p);
    // Window of gamma=2 around page 4: LPAs of pages 2..6.
    const auto w = flash.oobWindow(4, 2);
    ASSERT_EQ(w.size(), 5u);
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(w[i], 102u + i);
}

TEST(FlashArray, OobWindowClipsAtBlockBoundary)
{
    FlashArray flash(smallGeom());
    for (Ppa p = 0; p < 8; p++)
        flash.programPage(p, 50 + p);
    for (Ppa p = 8; p < 10; p++)
        flash.programPage(p, 90 + p);

    // Page 1's window of gamma=3 reaches below page 0: nulls there.
    auto w = flash.oobWindow(1, 3);
    ASSERT_EQ(w.size(), 7u);
    EXPECT_EQ(w[0], kInvalidLpa);
    EXPECT_EQ(w[1], kInvalidLpa);
    EXPECT_EQ(w[2], 50u);

    // Page 7's window must not leak into block 1 (pages 8+).
    w = flash.oobWindow(7, 2);
    ASSERT_EQ(w.size(), 5u);
    EXPECT_EQ(w[2], 57u);
    EXPECT_EQ(w[3], kInvalidLpa);
    EXPECT_EQ(w[4], kInvalidLpa);
}

TEST(FlashArray, OobWindowClampsToPhysicalEntries)
{
    Geometry g = smallGeom();
    g.oob_size = 20; // Only 5 entries -> max gamma 2.
    FlashArray flash(g);
    for (Ppa p = 0; p < 8; p++)
        flash.programPage(p, p);
    const auto w = flash.oobWindow(4, 10);
    EXPECT_EQ(w.size(), 5u);
}

TEST(FlashArray, OobWindowScratchOverloadMatches)
{
    FlashArray flash(smallGeom());
    for (Ppa p = 0; p < 10; p++)
        flash.programPage(p, 200 + p);

    std::vector<Lpa> scratch;
    for (Ppa ppa : {0u, 1u, 4u, 7u, 8u, 9u}) {
        for (uint32_t gamma : {0u, 1u, 3u, 50u}) {
            flash.oobWindow(ppa, gamma, scratch);
            EXPECT_EQ(scratch, flash.oobWindow(ppa, gamma))
                << "ppa=" << ppa << " gamma=" << gamma;
        }
    }
    // The scratch buffer shrinks as well as grows between calls.
    flash.oobWindow(4, 3, scratch);
    ASSERT_EQ(scratch.size(), 7u);
    flash.oobWindow(4, 1, scratch);
    ASSERT_EQ(scratch.size(), 3u);
}

TEST(FlashArraySparse, ResidencyTracksLiveBlocks)
{
    FlashArray flash(smallGeom());
    EXPECT_EQ(flash.residentBlocks(), 0u);
    const uint64_t fresh = flash.residentBytes();

    // Programming one page materializes exactly its block.
    flash.programPage(0, 1);
    EXPECT_EQ(flash.residentBlocks(), 1u);
    EXPECT_EQ(flash.residentBytes(),
              fresh + flash.geometry().pages_per_block * sizeof(Lpa));
    for (Ppa p = 1; p < 8; p++)
        flash.programPage(p, p);
    EXPECT_EQ(flash.residentBlocks(), 1u);

    flash.programPage(flash.geometry().firstPpa(3), 77);
    EXPECT_EQ(flash.residentBlocks(), 2u);

    // Erase releases the block's array; erasing a never-programmed
    // block changes nothing.
    flash.eraseBlock(0);
    EXPECT_EQ(flash.residentBlocks(), 1u);
    flash.eraseBlock(5);
    EXPECT_EQ(flash.residentBlocks(), 1u);
    flash.eraseBlock(3);
    EXPECT_EQ(flash.residentBlocks(), 0u);
    EXPECT_EQ(flash.residentBytes(), fresh);
}

TEST(FlashArraySparse, MatchesDenseSemanticsUnderProgramEraseCycles)
{
    // Drive random in-order program / erase / reprogram cycles against
    // a dense reference model; every page and every OOB window must
    // agree at every step.
    const Geometry g = smallGeom();
    FlashArray flash(g);
    std::vector<Lpa> dense(g.totalPages(), kInvalidLpa);
    std::vector<uint32_t> next_page(g.totalBlocks(), 0);

    Rng rng(0xF1A5F1A5);
    Lpa next_lpa = 1;
    for (int step = 0; step < 2000; step++) {
        const uint32_t block =
            static_cast<uint32_t>(rng.nextBounded(g.totalBlocks()));
        const bool full = next_page[block] == g.pages_per_block;
        if (full || (next_page[block] > 0 && rng.nextBounded(8) == 0)) {
            // Erase (forced when full so cycles keep going).
            for (uint32_t i = 0; i < g.pages_per_block; i++)
                dense[g.firstPpa(block) + i] = kInvalidLpa;
            next_page[block] = 0;
            flash.eraseBlock(block);
        } else {
            const Ppa ppa = g.firstPpa(block) + next_page[block];
            dense[ppa] = next_lpa;
            flash.programPage(ppa, next_lpa);
            next_page[block]++;
            next_lpa++;
        }

        // Full-array sweep (the device is 64 pages).
        for (Ppa p = 0; p < g.totalPages(); p++)
            ASSERT_EQ(flash.peekLpa(p), dense[p]) << "step " << step;
        // Spot-check an OOB window against the dense model.
        const Ppa probe = static_cast<Ppa>(rng.nextBounded(g.totalPages()));
        const auto w = flash.oobWindow(probe, 2);
        for (uint32_t i = 0; i < w.size(); i++) {
            const int64_t p = static_cast<int64_t>(probe) - 2 + i;
            const Ppa first = g.firstPpa(g.blockOf(probe));
            const bool in_block =
                p >= first && p < first + g.pages_per_block;
            ASSERT_EQ(w[i], in_block ? dense[static_cast<Ppa>(p)]
                                     : kInvalidLpa)
                << "step " << step;
        }
    }
}

TEST(ChannelGeometry, RoundRobinStriping)
{
    Geometry g = smallGeom();
    EXPECT_EQ(g.channelOfBlock(0), 0u);
    EXPECT_EQ(g.channelOfBlock(1), 1u);
    EXPECT_EQ(g.channelOfBlock(2), 0u);
    EXPECT_EQ(g.channelOf(g.firstPpa(3)), 1u);
}

} // namespace
} // namespace leaftl
