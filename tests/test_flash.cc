/**
 * @file
 * Tests for the NAND flash array model: program/read/erase semantics,
 * NAND ordering rules, and the OOB reverse-mapping window (§3.5).
 */

#include <gtest/gtest.h>

#include "flash/flash_array.hh"

namespace leaftl
{
namespace
{

Geometry
smallGeom()
{
    Geometry g;
    g.num_channels = 2;
    g.blocks_per_channel = 4;
    g.pages_per_block = 8;
    g.page_size = 4096;
    g.oob_size = 128;
    return g;
}

TEST(Geometry, DerivedQuantities)
{
    const Geometry g = smallGeom();
    EXPECT_EQ(g.totalBlocks(), 8u);
    EXPECT_EQ(g.totalPages(), 64u);
    EXPECT_EQ(g.capacityBytes(), 64u * 4096);
    EXPECT_EQ(g.blockOf(17), 2u);
    EXPECT_EQ(g.pageInBlock(17), 1u);
    EXPECT_EQ(g.channelOfBlock(3), 1u);
    EXPECT_EQ(g.firstPpa(2), 16u);
    EXPECT_EQ(g.oobEntries(), 32u);
}

TEST(FlashArray, ProgramAndReadBack)
{
    FlashArray flash(smallGeom());
    flash.programPage(0, 111);
    flash.programPage(1, 222);
    EXPECT_EQ(flash.readPage(0), 111u);
    EXPECT_EQ(flash.readPage(1), 222u);
    EXPECT_EQ(flash.readPage(2), kInvalidLpa);
    EXPECT_EQ(flash.counters().page_writes, 2u);
    EXPECT_EQ(flash.counters().page_reads, 3u);
}

TEST(FlashArray, PeekDoesNotCount)
{
    FlashArray flash(smallGeom());
    flash.programPage(0, 5);
    EXPECT_EQ(flash.peekLpa(0), 5u);
    EXPECT_EQ(flash.counters().page_reads, 0u);
}

TEST(FlashArray, BlockLifecycle)
{
    FlashArray flash(smallGeom());
    EXPECT_EQ(flash.blockState(0), BlockState::Free);
    flash.programPage(0, 1);
    EXPECT_EQ(flash.blockState(0), BlockState::Open);
    for (Ppa p = 1; p < 8; p++)
        flash.programPage(p, p);
    EXPECT_EQ(flash.blockState(0), BlockState::Full);
    flash.eraseBlock(0);
    EXPECT_EQ(flash.blockState(0), BlockState::Free);
    EXPECT_EQ(flash.eraseCount(0), 1u);
    EXPECT_EQ(flash.peekLpa(0), kInvalidLpa);
    // Erased block can be programmed again from page 0.
    flash.programPage(0, 99);
    EXPECT_EQ(flash.peekLpa(0), 99u);
}

TEST(FlashArrayDeath, OutOfOrderProgramAborts)
{
    FlashArray flash(smallGeom());
    EXPECT_DEATH(flash.programPage(3, 1), "out-of-order");
    flash.programPage(0, 1);
    EXPECT_DEATH(flash.programPage(0, 2), "out-of-order");
}

TEST(FlashArray, OobWindowCoversNeighbors)
{
    FlashArray flash(smallGeom());
    for (Ppa p = 0; p < 8; p++)
        flash.programPage(p, 100 + p);
    // Window of gamma=2 around page 4: LPAs of pages 2..6.
    const auto w = flash.oobWindow(4, 2);
    ASSERT_EQ(w.size(), 5u);
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(w[i], 102u + i);
}

TEST(FlashArray, OobWindowClipsAtBlockBoundary)
{
    FlashArray flash(smallGeom());
    for (Ppa p = 0; p < 8; p++)
        flash.programPage(p, 50 + p);
    for (Ppa p = 8; p < 10; p++)
        flash.programPage(p, 90 + p);

    // Page 1's window of gamma=3 reaches below page 0: nulls there.
    auto w = flash.oobWindow(1, 3);
    ASSERT_EQ(w.size(), 7u);
    EXPECT_EQ(w[0], kInvalidLpa);
    EXPECT_EQ(w[1], kInvalidLpa);
    EXPECT_EQ(w[2], 50u);

    // Page 7's window must not leak into block 1 (pages 8+).
    w = flash.oobWindow(7, 2);
    ASSERT_EQ(w.size(), 5u);
    EXPECT_EQ(w[2], 57u);
    EXPECT_EQ(w[3], kInvalidLpa);
    EXPECT_EQ(w[4], kInvalidLpa);
}

TEST(FlashArray, OobWindowClampsToPhysicalEntries)
{
    Geometry g = smallGeom();
    g.oob_size = 20; // Only 5 entries -> max gamma 2.
    FlashArray flash(g);
    for (Ppa p = 0; p < 8; p++)
        flash.programPage(p, p);
    const auto w = flash.oobWindow(4, 10);
    EXPECT_EQ(w.size(), 5u);
}

TEST(ChannelGeometry, RoundRobinStriping)
{
    Geometry g = smallGeom();
    EXPECT_EQ(g.channelOfBlock(0), 0u);
    EXPECT_EQ(g.channelOfBlock(1), 1u);
    EXPECT_EQ(g.channelOfBlock(2), 0u);
    EXPECT_EQ(g.channelOf(g.firstPpa(3)), 1u);
}

} // namespace
} // namespace leaftl
